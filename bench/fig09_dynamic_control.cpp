// Figure 9 — Impact of PerfCloud's dynamic resource control.
//
// Scenario (§IV-B): Spark logistic regression (40 tasks/stage) on the
// 12-node virtual cluster, colocated with fio random read, STREAM, sysbench
// oltp, and sysbench cpu VMs. Compared schemes: the default system (no
// resource capping), a static policy (20 % I/O cap on fio, 20 % CPU cap on
// STREAM, set by an oracle operator), and PerfCloud.
//
//  (a) std-dev of block iowait ratio over time, default vs PerfCloud;
//  (b) std-dev of CPI over time, default vs PerfCloud;
//  (c) JCT per scheme plus what each scheme costs the antagonists.
#include <iostream>

#include "baselines/static_cap.hpp"
#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

struct Outcome {
  double jct = 0.0;
  double fio_iops = 0.0;
  double stream_bw = 0.0;
  sim::TimeSeries io_signal;
  sim::TimeSeries cpi_signal;
};

enum class Mode { kDefault, kStatic, kPerfCloud };

Outcome run(Mode mode, std::uint64_t seed, double fio_solo_iops) {
  exp::Cluster c = bench::small_scale_cluster(seed);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 15.0});
  const int stream =
      exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 15.0});
  exp::add_oltp(c, "host-0");
  exp::add_sysbench_cpu(c, "host-0");

  // Node managers always run for signal recording; only PerfCloud actuates.
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/mode == Mode::kPerfCloud);
  if (mode == Mode::kStatic) {
    base::apply_static_caps(
        *c.cloud, "host-0",
        {base::StaticCap{.vm_id = fio, .io_bytes_per_sec = 0.2 * fio_solo_iops * 4096.0},
         base::StaticCap{.vm_id = stream, .cpu_cores = 0.2 * 16.0}});
  }

  Outcome o;
  o.jct = exp::run_job(c, wl::make_spark_logreg(40, 8));
  // Antagonist throughput is averaged over the job plus a minute after it:
  // PerfCloud's caps recover once contention subsides, the static policy's
  // never do — that recovery is the scheme's whole advantage for the
  // low-priority tenants.
  exp::run_for(c, 60.0);
  o.fio_iops = dynamic_cast<const wl::FioRandomRead*>(c.vm(fio).guest())->achieved_iops();
  o.stream_bw = dynamic_cast<const wl::StreamBenchmark*>(c.vm(stream).guest())->achieved_bw();
  o.io_signal = c.node_manager(0).io_signal("hadoop");
  o.cpi_signal = c.node_manager(0).cpi_signal("hadoop");
  return o;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 19;
  const double fio_solo = bench::fio_standalone_iops(kSeed);

  const Outcome def = run(Mode::kDefault, kSeed, fio_solo);
  const Outcome stat = run(Mode::kStatic, kSeed, fio_solo);
  const Outcome perf = run(Mode::kPerfCloud, kSeed, fio_solo);

  exp::print_banner(std::cout, "Fig 9(a)",
                    "std-dev of block iowait ratio, default vs PerfCloud");
  exp::Table a({"t (s)", "default", "PerfCloud"});
  const std::size_t na = std::max(def.io_signal.size(), perf.io_signal.size());
  for (std::size_t i = 0; i < na; ++i) {
    a.add_row(exp::fmt(5.0 * static_cast<double>(i + 1), 0),
              {i < def.io_signal.size() ? def.io_signal.value(i) : 0.0,
               i < perf.io_signal.size() ? perf.io_signal.value(i) : 0.0},
              2);
  }
  a.print(std::cout);

  exp::print_banner(std::cout, "Fig 9(b)", "std-dev of CPI, default vs PerfCloud");
  exp::Table b({"t (s)", "default", "PerfCloud"});
  const std::size_t nb = std::max(def.cpi_signal.size(), perf.cpi_signal.size());
  for (std::size_t i = 0; i < nb; ++i) {
    b.add_row(exp::fmt(5.0 * static_cast<double>(i + 1), 0),
              {i < def.cpi_signal.size() ? def.cpi_signal.value(i) : 0.0,
               i < perf.cpi_signal.size() ? perf.cpi_signal.value(i) : 0.0},
              3);
  }
  b.print(std::cout);

  exp::print_banner(std::cout, "Fig 9(c)", "job completion time and antagonist cost per scheme");
  exp::Table t({"scheme", "Spark logreg JCT (s)", "improvement vs default %", "fio IOPS",
                "STREAM GB/s"});
  const auto row = [&](const char* name, const Outcome& o) {
    t.add_row({name, exp::fmt(o.jct, 0), exp::fmt((1.0 - o.jct / def.jct) * 100.0, 1),
               exp::fmt(o.fio_iops, 0), exp::fmt(o.stream_bw / 1e9, 2)});
  };
  row("default", def);
  row("static 20% caps", stat);
  row("PerfCloud", perf);
  t.print(std::cout);
  std::cout << "\nPaper shape: PerfCloud and the static policy beat the default by\n"
               "~31% and ~33% respectively; PerfCloud additionally lets the\n"
               "antagonists recover whenever the signals subside, so fio/STREAM\n"
               "throughput is higher than under the permanent static caps.\n";
  return 0;
}
