// Ablation — why CUBIC? Controller-law comparison and parameter sweeps.
//
// The paper motivates the CUBIC-inspired law with control stability
// (§III-C): ad-hoc capping oscillates, and CUBIC's plateau keeps the system
// near the last known-bad operating point before probing. This bench
// compares control laws on the Fig 9 scenario and sweeps beta / gamma:
//   - victim JCT,
//   - antagonist throughput (what the cap costs the fio VM),
//   - signal overshoot: time the iowait deviation spends above threshold.
#include <iostream>
#include <map>
#include <memory>

#include "baselines/aimd.hpp"
#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

struct Outcome {
  double jct = 0.0;
  double fio_iops = 0.0;
  double over_threshold_s = 0.0;
};

/// Drive the Fig 9-style scenario with a configurable PerfCloud, or with an
/// external AIMD loop replacing the CUBIC controllers.
Outcome run(const core::PerfCloudConfig& cfg, bool use_aimd, std::uint64_t seed) {
  exp::Cluster c = bench::small_scale_cluster(seed);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 15.0});
  exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 15.0});

  std::unique_ptr<base::AimdController> aimd;
  if (use_aimd) {
    // Monitoring-only node manager supplies the signal; we actuate.
    exp::enable_perfcloud(c, cfg, /*control=*/false);
    c.engine->every(cfg.sample_interval_s, [&c, &aimd, fio, &cfg](sim::SimTime) {
      core::NodeManager& nm = c.node_manager(0);
      const auto& sig = nm.io_signal("hadoop");
      if (sig.empty()) return;
      const bool contended = sig.value(sig.size() - 1) > cfg.io_deviation_threshold;
      if (!aimd) {
        if (!contended) return;  // engage on first contention, as PerfCloud would
        aimd = std::make_unique<base::AimdController>(
            base::AimdController::Params{}, std::max(nm.monitor().observed_io_bps(fio), 1.0e6));
      }
      aimd->step(contended);
      if (aimd->lifted()) {
        c.cloud->host("host-0").clear_blkio_throttle(fio);
        aimd.reset();
      } else {
        c.cloud->host("host-0").set_blkio_throttle(fio, aimd->cap_absolute());
      }
    }, sim::SimTime(cfg.sample_interval_s + 0.001));
  } else {
    exp::enable_perfcloud(c, cfg);
  }

  Outcome o;
  o.jct = exp::run_job(c, wl::make_spark_logreg(40, 8));
  o.fio_iops = dynamic_cast<const wl::FioRandomRead*>(c.vm(fio).guest())->achieved_iops();
  const auto& sig = c.node_manager(0).io_signal("hadoop");
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (sig.value(i) > cfg.io_deviation_threshold) o.over_threshold_s += cfg.sample_interval_s;
  }
  return o;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 19;
  exp::print_banner(std::cout, "Ablation", "control law and parameter sweeps (Fig 9 scenario)");

  exp::Table t({"controller", "JCT (s)", "fio IOPS", "signal > H (s)"});
  const auto row = [&](const std::string& name, const Outcome& o) {
    t.add_row({name, exp::fmt(o.jct, 0), exp::fmt(o.fio_iops, 0),
               exp::fmt(o.over_threshold_s, 0)});
  };

  core::PerfCloudConfig cubic;
  row("CUBIC (paper: beta .8, gamma .005)", run(cubic, false, kSeed));
  row("AIMD (beta .8, alpha .08)", run(cubic, true, kSeed));

  core::PerfCloudConfig slow = cubic;
  slow.gamma = 0.001;
  row("CUBIC gamma .001 (slow recovery)", run(slow, false, kSeed));

  core::PerfCloudConfig fast = cubic;
  fast.gamma = 0.05;
  row("CUBIC gamma .05 (fast probing)", run(fast, false, kSeed));

  core::PerfCloudConfig gentle = cubic;
  gentle.beta = 0.3;
  row("CUBIC beta .3 (gentle decrease)", run(gentle, false, kSeed));

  t.print(std::cout);
  std::cout << "\nReading: slow gamma starves the antagonist for longer than needed;\n"
               "fast gamma and gentle beta let contention linger (more time above\n"
               "threshold); the paper's setting balances victim JCT against the\n"
               "antagonist's residual throughput.\n";
  return 0;
}
