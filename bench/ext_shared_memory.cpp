// §IV-D extension — shared-memory communication among colocated Hadoop VMs.
//
// The paper plans to "study the impact of other optimizations such as
// shared-memory communication among Hadoop VMs ... on the effectiveness of
// PerfCloud". When worker VMs share a host, shuffle traffic can move over
// shared memory instead of the disk; this bench measures (a) how much that
// helps shuffle-heavy jobs, and (b) how it interacts with PerfCloud under
// I/O interference — less disk traffic means both less exposure to an I/O
// antagonist and a weaker iowait signal for the detector.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

struct Outcome {
  double jct = 0.0;
  bool fio_throttled = false;
};

Outcome run(const std::string& job_name, bool shm, bool with_fio, bool perfcloud,
            std::uint64_t seed) {
  exp::Cluster c = bench::small_scale_cluster(seed);
  c.framework->set_shared_memory_shuffle(shm);
  int fio = -1;
  if (with_fio) fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 10.0});
  if (perfcloud) exp::enable_perfcloud(c, core::PerfCloudConfig{});
  Outcome o;
  o.jct = exp::run_job(c, wl::make_benchmark(job_name, 20));
  if (perfcloud && fio >= 0) o.fio_throttled = !c.node_manager(0).io_cap_series(fio).empty();
  return o;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 37;
  exp::print_banner(std::cout, "Extension (§IV-D)",
                    "shared-memory shuffle between colocated worker VMs (12-node, one host)");

  exp::Table t({"benchmark", "shm", "JCT idle (s)", "JCT + fio (s)",
                "JCT + fio + PerfCloud (s)", "fio throttled?"});
  for (const std::string name : {"terasort", "self-join", "pagerank"}) {
    for (const bool shm : {false, true}) {
      const Outcome idle = run(name, shm, false, false, kSeed);
      const Outcome noisy = run(name, shm, true, false, kSeed);
      const Outcome guarded = run(name, shm, true, true, kSeed);
      t.add_row({name, shm ? "on" : "off", exp::fmt(idle.jct, 0), exp::fmt(noisy.jct, 0),
                 exp::fmt(guarded.jct, 0), guarded.fio_throttled ? "yes" : "no"});
    }
  }
  t.print(std::cout);
  std::cout << "\nReading: shared memory removes the shuffle's disk traffic, which both\n"
               "speeds the job up and shrinks its exposure to the I/O antagonist; the\n"
               "detector still fires on the remaining HDFS reads when fio bites.\n";
  return 0;
}
