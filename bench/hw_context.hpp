// Hardware context for the BENCH_*.json writers: core count plus the
// scheduler environment the numbers were produced under. A 1-core CI run of
// any sharding bench measures pure overhead, not scaling — recording the
// context in the artifact makes that caveat machine-readable instead of a
// footnote a reader has to remember.
#pragma once

#include <cstdlib>
#include <string>
#include <thread>

#include "sim/alloc_gauge.hpp"

namespace perfcloud::bench {

/// One JSON object: `{"hardware_threads": N, "env_PERFCLOUD_SHARDS": "4",
/// "env_PERFCLOUD_SCHED": null, "alloc_hook_linked": true, "allocs": N,
/// "alloc_bytes": N}`. Env fields are the raw variables (null when unset);
/// garbage values never reach this point because Engine construction rejects
/// them first. The allocation counters are process-cumulative at emission
/// time — in binaries without the counting hook they read zero and
/// alloc_hook_linked says so.
inline std::string hw_context_json() {
  const auto env_or_null = [](const char* name) -> std::string {
    const char* v = std::getenv(name);
    return v != nullptr ? "\"" + std::string(v) + "\"" : std::string("null");
  };
  const sim::AllocGaugeSnapshot mem = sim::alloc_gauge_read();
  return "{\"hardware_threads\": " + std::to_string(std::thread::hardware_concurrency()) +
         ", \"env_PERFCLOUD_SHARDS\": " + env_or_null("PERFCLOUD_SHARDS") +
         ", \"env_PERFCLOUD_SCHED\": " + env_or_null("PERFCLOUD_SCHED") +
         ", \"alloc_hook_linked\": " + (sim::alloc_gauge_linked() ? "true" : "false") +
         ", \"allocs\": " + std::to_string(mem.allocs) +
         ", \"alloc_bytes\": " + std::to_string(mem.bytes) + "}";
}

}  // namespace perfcloud::bench
