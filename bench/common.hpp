// Shared scenario builders for the figure-reproduction benches.
//
// The paper's two testbed shapes (§II, §IV-A):
//  - motivation/small-scale: a virtual Hadoop cluster on ONE bare-metal
//    host (6 worker VMs in §II, 12 nodes = 10 workers in §IV-B);
//  - large-scale: 152 nodes = 150 workers over 15 hosts (§IV-C).
#pragma once

#include <string>

#include "exp/cluster.hpp"
#include "workloads/benchmarks.hpp"

namespace perfcloud::bench {

/// §II motivation cluster: 6 Hadoop VMs on one host.
inline exp::Cluster motivation_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = seed;
  return exp::make_cluster(p);
}

/// §IV-B small-scale cluster: the paper's 12-node virtual cluster on one
/// host (2 masters live inside the framework, so 10 worker VMs).
inline exp::Cluster small_scale_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 10;
  p.seed = seed;
  return exp::make_cluster(p);
}

/// §IV-C large-scale cluster: 152-node virtual cluster over 15 hosts
/// (150 workers; 2 masters in the framework).
inline exp::Cluster large_scale_cluster(std::uint64_t seed) {
  exp::ClusterParams p;
  p.hosts = 15;
  p.workers = 150;
  p.seed = seed;
  p.tick_dt = 0.25;  // coarser ticks keep the big runs fast
  return exp::make_cluster(p);
}

/// Measure a workload's standalone baseline JCT on a fresh, idle cluster of
/// the same shape.
inline double baseline_jct(const wl::JobSpec& job, std::uint64_t seed, int workers = 6) {
  exp::ClusterParams p;
  p.workers = workers;
  p.seed = seed;
  exp::Cluster c = exp::make_cluster(p);
  return exp::run_job(c, job);
}

/// fio's standalone throughput: alone on an otherwise idle host.
inline double fio_standalone_iops(std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 1;  // an idle worker VM; fio has the device to itself
  p.seed = seed;
  exp::Cluster c = exp::make_cluster(p);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duty_period_s = 0.0});
  exp::run_for(c, 60.0);
  const auto* guest = dynamic_cast<const wl::FioRandomRead*>(c.vm(fio).guest());
  return guest->achieved_iops();
}

/// The default benchmark size used in the motivation figures.
inline wl::JobSpec motivation_job(const std::string& name) {
  return wl::make_benchmark(name, 10);
}

}  // namespace perfcloud::bench
