// Simulator-core microbenchmark: the perf trajectory baseline for the
// engine hot paths rebuilt in the O(log n) overhaul.
//
// Two workloads, each measured against an in-file reimplementation of the
// *seed* data structures so before/after lives in one binary:
//  1. event/periodic throughput — 150 periodic activities plus a churning
//     population of 10k pending one-shot events (every fired event schedules
//     a successor; a slice gets cancelled and replaced, the clone-kill
//     pattern). Seed implementation: callbacks in a sorted vector with O(n)
//     erase per dispatch/cancel, periodics re-scanned linearly per event.
//  2. identifier ticks — one victim deviation signal correlated against a
//     suspect population every 5 s interval at correlation window 60.
//     Seed implementation: re-align + re-sum the window per suspect per tick
//     (the batch path, still in the tree); new implementation: the
//     incremental RollingCorrelation path.
//  3. time-queue A/B — the current engine under both PERFCLOUD_TIMEQ
//     backends (binary heap vs hierarchical timer wheel) at 1k/10k/100k
//     live periodic activities, horizon scaled so every population fires
//     the same total count. Pure re-arm throughput: the heap pays
//     O(log n) per fire, the wheel an O(1) level-0 relink.
//
// Results go to stdout and BENCH_engine.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <vector>

#include "core/identifier.hpp"
#include "hw_context.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/time_series.hpp"

using namespace perfcloud;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Seed-style event queue + engine (the "before" reference) -------------
//
// Faithful to the seed's asymptotics: a min-heap of (time, seq, id) entries
// over a sorted id->callback vector, erased by memmove on every dispatch and
// cancel; periodics stored in a plain vector and linearly scanned for the
// next due one on every step.
namespace legacy {

struct Handle {
  std::uint64_t id = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void(sim::SimTime)>;

  Handle schedule(sim::SimTime t, Callback cb) {
    const std::uint64_t id = next_id_++;
    heap_.push_back(Entry{t, next_seq_++, id});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    callbacks_.emplace_back(id, std::move(cb));
    return Handle{id};
  }

  bool cancel(Handle h) {
    const auto it = find(h.id);
    if (it == callbacks_.end()) return false;
    callbacks_.erase(it);  // O(n) memmove — the seed's cancel cost
    return true;
  }

  [[nodiscard]] sim::SimTime next_time() {
    drop_cancelled();
    return heap_.empty() ? sim::SimTime::infinity() : heap_.front().t;
  }

  bool run_next() {
    drop_cancelled();
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Entry top = heap_.back();
    heap_.pop_back();
    const auto it = find(top.id);
    Callback fn = std::move(it->second);
    callbacks_.erase(it);  // O(n) memmove — the seed's dispatch cost
    fn(top.t);
    return true;
  }

 private:
  struct Entry {
    sim::SimTime t;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::vector<std::pair<std::uint64_t, Callback>>::iterator find(std::uint64_t id) {
    const auto it = std::lower_bound(callbacks_.begin(), callbacks_.end(), id,
                                     [](const auto& p, std::uint64_t v) { return p.first < v; });
    if (it == callbacks_.end() || it->first != id) return callbacks_.end();
    return it;
  }

  void drop_cancelled() {
    while (!heap_.empty()) {
      if (find(heap_.front().id) != callbacks_.end()) return;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<Entry> heap_;
  std::vector<std::pair<std::uint64_t, Callback>> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
};

class Engine {
 public:
  using PeriodicFn = std::function<void(sim::SimTime)>;

  [[nodiscard]] sim::SimTime now() const { return now_; }
  Handle at(sim::SimTime t, EventQueue::Callback cb) { return queue_.schedule(t, std::move(cb)); }
  Handle after(double dt, EventQueue::Callback cb) {
    return queue_.schedule(now_ + dt, std::move(cb));
  }
  bool cancel(Handle h) { return queue_.cancel(h); }
  void every(double period, PeriodicFn fn, sim::SimTime start) {
    periodics_.push_back(Periodic{period, std::move(fn), start});
  }

  sim::SimTime run_until(sim::SimTime t_end) {
    for (;;) {
      sim::SimTime next_periodic = sim::SimTime::infinity();
      for (const Periodic& p : periodics_) next_periodic = std::min(next_periodic, p.next);
      const sim::SimTime next_event = queue_.next_time();
      const sim::SimTime next = std::min(next_periodic, next_event);
      if (next > t_end || next == sim::SimTime::infinity()) {
        now_ = t_end;
        return now_;
      }
      if (next_periodic <= next_event) {
        fire_due_periodics(next_periodic);
      } else {
        now_ = next_event;
        queue_.run_next();
      }
    }
  }

 private:
  struct Periodic {
    double period;
    PeriodicFn fn;
    sim::SimTime next;
  };

  void fire_due_periodics(sim::SimTime t) {
    for (;;) {
      std::size_t best = periodics_.size();
      sim::SimTime best_t = sim::SimTime::infinity();
      for (std::size_t i = 0; i < periodics_.size(); ++i) {
        if (periodics_[i].next <= t && periodics_[i].next < best_t) {
          best = i;
          best_t = periodics_[i].next;
        }
      }
      if (best == periodics_.size()) return;
      now_ = best_t;
      Periodic& p = periodics_[best];
      p.next = p.next + p.period;
      p.fn(now_);
    }
  }

  sim::SimTime now_{0.0};
  EventQueue queue_;
  std::vector<Periodic> periodics_;
};

}  // namespace legacy

// --- Workload 1: event/periodic churn -------------------------------------

constexpr int kPeriodics = 150;
constexpr int kPendingEvents = 10000;
constexpr double kHorizonS = 200.0;

/// Drives either engine through the same deterministic churn; returns
/// (events fired, wall seconds).
template <typename EngineT, typename HandleT>
std::pair<std::uint64_t, double> run_event_churn() {
  EngineT eng;
  sim::Rng rng(4242);
  std::uint64_t fired = 0;

  for (int i = 0; i < kPeriodics; ++i) {
    eng.every(1.0, [&fired](sim::SimTime) { ++fired; },
              sim::SimTime(rng.uniform(0.0, 1.0)));
  }

  // Self-renewing event population: each event schedules its successor, and
  // every 8th firing also cancels one pending victim and replaces it (the
  // speculative-clone kill pattern that exercises cancel).
  std::vector<HandleT> handles(static_cast<std::size_t>(kPendingEvents));
  std::function<void(std::size_t, sim::SimTime)> fire = [&](std::size_t slot, sim::SimTime t) {
    ++fired;
    const double dt = rng.uniform(0.5, 40.0);
    handles[slot] = eng.at(t + dt, [&fire, slot](sim::SimTime at) { fire(slot, at); });
    if (fired % 8 == 0) {
      const auto victim =
          static_cast<std::size_t>(rng.uniform_int(0, kPendingEvents - 1));
      if (victim != slot && eng.cancel(handles[victim])) {
        const double vdt = rng.uniform(0.5, 40.0);
        handles[victim] = eng.at(t + vdt, [&fire, victim](sim::SimTime at) { fire(victim, at); });
      }
    }
  };
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const double t0 = rng.uniform(0.0, 40.0);
    handles[i] = eng.at(sim::SimTime(t0), [&fire, i](sim::SimTime at) { fire(i, at); });
  }

  const double t0 = now_seconds();
  eng.run_until(sim::SimTime(kHorizonS));
  const double dt = now_seconds() - t0;
  return {fired, dt};
}

// --- Workload 2: identifier ticks ------------------------------------------

constexpr std::size_t kWindow = 60;
constexpr int kSuspects = 30;
constexpr int kTicks = 4000;

/// One victim signal vs kSuspects gappy usage series, scored every tick.
/// `use_incremental` switches between the seed batch path and the rolling
/// path; returns (ns per tick, checksum of correlations for verification).
std::pair<double, double> run_identifier_ticks(bool use_incremental) {
  core::PerfCloudConfig cfg;
  cfg.correlation_window = kWindow;
  core::AntagonistIdentifier ident(cfg);

  sim::Rng rng(7);
  sim::TimeSeries victim("victim");
  std::vector<sim::TimeSeries> suspects;
  suspects.reserve(kSuspects);
  for (int i = 0; i < kSuspects; ++i) suspects.emplace_back("s" + std::to_string(i));
  std::vector<core::SuspectSignal> sig;
  for (int i = 0; i < kSuspects; ++i) sig.push_back(core::SuspectSignal{i, &suspects[i]});

  double checksum = 0.0;
  double elapsed = 0.0;
  for (int tick = 0; tick < kTicks; ++tick) {
    const sim::SimTime t(5.0 * tick);
    for (auto& s : suspects) {
      if (rng.uniform() < 0.7) s.add(t, rng.uniform());  // gappy: ~30 % missing
    }
    victim.add(t, rng.uniform());

    const double t0 = now_seconds();
    const std::vector<core::SuspectScore> scores =
        use_incremental ? ident.score_incremental(0, victim, sig) : ident.score(victim, sig);
    elapsed += now_seconds() - t0;
    for (const core::SuspectScore& s : scores) checksum += s.correlation;
  }
  return {elapsed / kTicks * 1e9, checksum};
}

// --- Workload 3: wheel-vs-heap periodic re-arm A/B --------------------------

constexpr double kAbTargetFirings = 1.0e6;

struct TimeqAb {
  int live = 0;
  std::uint64_t firings = 0;
  double heap_fps = 0.0;   // firings per wall second, heap backend
  double wheel_fps = 0.0;  // firings per wall second, wheel backend
  double speedup = 0.0;    // wheel_fps / heap_fps
};

/// `live` periodic activities with periods uniform in [0.5, 2.0] s (all
/// inside the wheel's level-0 span, the steady-state re-arm case), run long
/// enough that the population fires ~kAbTargetFirings times in total.
/// Repetitions alternate backends and each backend keeps its best wall time
/// — the 1-core CI box shares its CPU, and best-of-N interleaved is the
/// only ordering that keeps a background burst from crowning a winner.
TimeqAb run_timeq_ab(int live) {
  constexpr int kReps = 5;
  const double mean_period = 1.25;
  const double horizon = kAbTargetFirings * mean_period / live;
  const auto run = [&](sim::TimeQueueKind kind) {
    sim::Engine eng(99, kind);
    sim::Rng rng(1234);  // same stream either way: identical populations
    std::uint64_t fired = 0;
    for (int i = 0; i < live; ++i) {
      eng.every(rng.uniform(0.5, 2.0), [&fired](sim::SimTime) { ++fired; },
                sim::SimTime(rng.uniform(0.0, 0.5)));
    }
    const double t0 = now_seconds();
    eng.run_until(sim::SimTime(horizon));
    return std::pair<std::uint64_t, double>{fired, now_seconds() - t0};
  };
  std::uint64_t heap_fired = 0;
  std::uint64_t wheel_fired = 0;
  double heap_best = 1.0e30;
  double wheel_best = 1.0e30;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto [hf, hs] = run(sim::TimeQueueKind::kHeap);
    const auto [wf, ws] = run(sim::TimeQueueKind::kWheel);
    heap_fired = hf;
    wheel_fired = wf;
    heap_best = std::min(heap_best, hs);
    wheel_best = std::min(wheel_best, ws);
  }
  if (heap_fired != wheel_fired) {
    std::cerr << "timeq A/B divergence at " << live << " live periodics: heap fired "
              << heap_fired << ", wheel fired " << wheel_fired << "\n";
    std::exit(1);
  }
  TimeqAb r;
  r.live = live;
  r.firings = heap_fired;
  r.heap_fps = static_cast<double>(heap_fired) / heap_best;
  r.wheel_fps = static_cast<double>(wheel_fired) / wheel_best;
  r.speedup = r.wheel_fps / r.heap_fps;
  return r;
}

}  // namespace

int main() {
  std::cout << "micro_engine: simulator hot-path before/after (seed-style vs current)\n\n";

  const auto [legacy_fired, legacy_s] = run_event_churn<legacy::Engine, legacy::Handle>();
  const auto [fired, cur_s] = run_event_churn<sim::Engine, sim::EventHandle>();
  const double legacy_eps = static_cast<double>(legacy_fired) / legacy_s;
  const double cur_eps = static_cast<double>(fired) / cur_s;
  const double event_speedup = cur_eps / legacy_eps;
  std::cout << "event churn (" << kPeriodics << " periodics, " << kPendingEvents
            << " pending events, " << kHorizonS << " s horizon):\n"
            << "  seed-style: " << static_cast<std::uint64_t>(legacy_eps) << " events/s ("
            << legacy_fired << " events in " << legacy_s << " s)\n"
            << "  current:    " << static_cast<std::uint64_t>(cur_eps) << " events/s (" << fired
            << " events in " << cur_s << " s)\n"
            << "  speedup:    " << event_speedup << "x\n\n";

  const auto [batch_ns, batch_sum] = run_identifier_ticks(false);
  const auto [incr_ns, incr_sum] = run_identifier_ticks(true);
  const double ident_speedup = batch_ns / incr_ns;
  std::cout << "identifier ticks (window " << kWindow << ", " << kSuspects << " suspects, "
            << kTicks << " ticks):\n"
            << "  batch (seed path): " << batch_ns << " ns/tick\n"
            << "  incremental:       " << incr_ns << " ns/tick\n"
            << "  speedup:           " << ident_speedup << "x\n"
            << "  correlation checksum delta (agreement check): " << (batch_sum - incr_sum)
            << "\n\n";

  std::vector<TimeqAb> ab;
  for (const int live : {1000, 10000, 100000}) ab.push_back(run_timeq_ab(live));
  std::cout << "time-queue A/B (periodic re-arm, PERFCLOUD_TIMEQ heap vs wheel, ~"
            << static_cast<std::uint64_t>(kAbTargetFirings) << " firings each):\n";
  for (const TimeqAb& r : ab) {
    std::cout << "  " << r.live << " live periodics: heap "
              << static_cast<std::uint64_t>(r.heap_fps) << " firings/s, wheel "
              << static_cast<std::uint64_t>(r.wheel_fps) << " firings/s, speedup " << r.speedup
              << "x\n";
  }

  std::ofstream json("BENCH_engine.json");
  json << "{\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"event_churn\": {\n"
       << "    \"periodics\": " << kPeriodics << ",\n"
       << "    \"pending_events\": " << kPendingEvents << ",\n"
       << "    \"events_per_sec_seed\": " << legacy_eps << ",\n"
       << "    \"events_per_sec\": " << cur_eps << ",\n"
       << "    \"speedup\": " << event_speedup << "\n"
       << "  },\n"
       << "  \"identifier\": {\n"
       << "    \"window\": " << kWindow << ",\n"
       << "    \"suspects\": " << kSuspects << ",\n"
       << "    \"ns_per_tick_batch\": " << batch_ns << ",\n"
       << "    \"ns_per_tick_incremental\": " << incr_ns << ",\n"
       << "    \"speedup\": " << ident_speedup << ",\n"
       << "    \"correlation_checksum_delta\": " << (batch_sum - incr_sum) << "\n"
       << "  },\n"
       << "  \"timeq_ab\": [\n";
  for (std::size_t i = 0; i < ab.size(); ++i) {
    json << "    {\"live_periodics\": " << ab[i].live << ", \"firings\": " << ab[i].firings
         << ", \"firings_per_sec_heap\": " << ab[i].heap_fps
         << ", \"firings_per_sec_wheel\": " << ab[i].wheel_fps
         << ", \"speedup\": " << ab[i].speedup << "}" << (i + 1 < ab.size() ? "," : "") << "\n";
  }
  json << "  ]\n"
       << "}\n";
  std::cout << "\nwrote BENCH_engine.json\n";
  return 0;
}
