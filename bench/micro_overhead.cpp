// §IV-D overhead analysis — microbenchmarks of PerfCloud's per-interval
// work, the analogue of the paper's "applying resource caps on a VM takes
// less than 30 ms" and "overhead increases linearly with the number of
// antagonists" observations.
#include <benchmark/benchmark.h>

#include "core/cubic.hpp"
#include "core/identifier.hpp"
#include "core/monitor.hpp"
#include "exp/cluster.hpp"
#include "exp/parallel_runner.hpp"
#include "sim/correlation.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

/// A warmed-up 12-VM host with an active job and node manager.
struct Rig {
  exp::Cluster cluster;
  Rig() : cluster(make()) {
    exp::add_fio(cluster, "host-0");
    exp::add_oltp(cluster, "host-0");
    exp::enable_perfcloud(cluster, core::PerfCloudConfig{});
    cluster.framework->submit(wl::make_terasort(20, 20));
    exp::run_for(cluster, 40.0);
  }
  static exp::Cluster make() {
    exp::ClusterParams p;
    p.workers = 10;
    p.seed = 77;
    return exp::make_cluster(p);
  }
};

Rig& rig() {
  static Rig r;
  return r;
}

void BM_MonitorSample(benchmark::State& state) {
  Rig& r = rig();
  core::PerformanceMonitor mon(r.cluster.cloud->host("host-0"), core::PerfCloudConfig{});
  double t = 1000.0;
  for (auto _ : state) {
    mon.sample(sim::SimTime(t));
    t += 5.0;
  }
}
BENCHMARK(BM_MonitorSample);

void BM_ControlStep(benchmark::State& state) {
  Rig& r = rig();
  core::NodeManager& nm = r.cluster.node_manager(0);
  double t = 2000.0;
  for (auto _ : state) {
    nm.control_step(sim::SimTime(t));
    t += 5.0;
  }
}
BENCHMARK(BM_ControlStep);

void BM_CubicStep(benchmark::State& state) {
  core::CubicController ctrl(core::PerfCloudConfig{}, 1.0e6);
  bool contended = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl.step(contended));
    contended = !contended;
  }
}
BENCHMARK(BM_CubicStep);

void BM_ApplyCaps(benchmark::State& state) {
  // The paper: applying caps is < 30 ms per VM and linear in antagonists.
  Rig& r = rig();
  virt::Hypervisor& hv = r.cluster.cloud->host("host-0");
  const int n_antagonists = static_cast<int>(state.range(0));
  std::vector<int> vms;
  for (const auto& vm : hv.vms()) {
    if (static_cast<int>(vms.size()) < n_antagonists) vms.push_back(vm->id());
  }
  for (auto _ : state) {
    for (const int id : vms) {
      hv.set_blkio_throttle(id, 1.0e6);
      hv.set_vcpu_quota(id, 1.0);
    }
  }
  state.SetItemsProcessed(state.iterations() * n_antagonists);
}
BENCHMARK(BM_ApplyCaps)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PearsonIdentification(benchmark::State& state) {
  // Correlating one victim signal against N suspects over a 24-sample window.
  const auto n_suspects = state.range(0);
  sim::Rng rng(5);
  sim::TimeSeries victim;
  std::vector<sim::TimeSeries> suspects(static_cast<std::size_t>(n_suspects));
  for (int i = 0; i < 24; ++i) {
    victim.add(sim::SimTime(i * 5.0), rng.uniform());
    for (auto& s : suspects) s.add(sim::SimTime(i * 5.0), rng.uniform());
  }
  core::AntagonistIdentifier ident{core::PerfCloudConfig{}};
  std::vector<core::SuspectSignal> sig;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    sig.push_back(core::SuspectSignal{static_cast<int>(i), &suspects[i]});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ident.score(victim, sig));
  }
}
BENCHMARK(BM_PearsonIdentification)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_PearsonIdentificationIncremental(benchmark::State& state) {
  // The rolling-accumulator path the node manager runs per control interval,
  // same shape as BM_PearsonIdentification for comparison. The series keep
  // growing across iterations (as in a real run); the incremental scorer
  // only consumes the newest sample.
  const auto n_suspects = state.range(0);
  sim::Rng rng(5);
  sim::TimeSeries victim;
  std::vector<sim::TimeSeries> suspects(static_cast<std::size_t>(n_suspects));
  core::AntagonistIdentifier ident{core::PerfCloudConfig{}};
  std::vector<core::SuspectSignal> sig;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    sig.push_back(core::SuspectSignal{static_cast<int>(i), &suspects[i]});
  }
  int tick = 0;
  for (auto _ : state) {
    victim.add(sim::SimTime(tick * 5.0), rng.uniform());
    for (auto& s : suspects) s.add(sim::SimTime(tick * 5.0), rng.uniform());
    ++tick;
    benchmark::DoNotOptimize(ident.score_incremental(0, victim, sig));
  }
}
BENCHMARK(BM_PearsonIdentificationIncremental)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ParallelExperimentRuns(benchmark::State& state) {
  // Independent scheme runs through the ParallelRunner: 4 self-contained
  // mini-clusters per iteration, at 1/2/4 worker threads. Wall time should
  // shrink with the thread count (up to the host's core count).
  const exp::ParallelRunner pool(static_cast<unsigned>(state.range(0)));
  for (auto _ : state) {
    std::vector<std::function<double()>> tasks;
    for (int i = 0; i < 4; ++i) {
      tasks.emplace_back([i] {
        exp::ClusterParams p;
        p.workers = 4;
        p.seed = 100 + static_cast<std::uint64_t>(i);
        exp::Cluster c = exp::make_cluster(p);
        return exp::run_job(c, wl::make_terasort(8, 8));
      });
    }
    benchmark::DoNotOptimize(pool.run(tasks));
  }
}
BENCHMARK(BM_ParallelExperimentRuns)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_HostTick(benchmark::State& state) {
  // Cost of one arbitration tick for a full 12-VM host.
  Rig& r = rig();
  virt::Hypervisor& hv = r.cluster.cloud->host("host-0");
  double t = 5000.0;
  for (auto _ : state) {
    hv.tick(sim::SimTime(t), 0.1);
    t += 0.1;
  }
}
BENCHMARK(BM_HostTick);

}  // namespace

BENCHMARK_MAIN();
