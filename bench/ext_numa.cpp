// §IV-D extension — NUMA-architecture-aware VM mapping.
//
// The paper lists "NUMA architecture-aware VM mapping" among the
// optimizations whose impact on PerfCloud it plans to study. This bench
// does that study on the dual-socket server model: a Spark logistic
// regression cluster shares a host with a STREAM VM under four placements x
// control settings, measuring JCT and what is left for the antagonist.
//
// Expected shape: NUMA separation alone removes most of the memory
// interference without throttling anyone (the antagonist keeps full
// bandwidth); PerfCloud alone recovers similar JCT but at the antagonist's
// expense; NUMA + PerfCloud leaves PerfCloud almost nothing to do.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

struct Outcome {
  double jct = 0.0;
  double stream_bw = 0.0;
  bool throttled = false;
};

Outcome run(bool numa_separate, bool perfcloud, std::uint64_t seed) {
  exp::ClusterParams p;
  p.workers = 10;
  p.seed = seed;
  p.server.sockets = 2;  // each socket carries a full LLC + memory channels
  exp::Cluster c = exp::make_cluster(p);

  // Worst-case default placement: the scheduler packed the workers onto the
  // antagonist's socket. NUMA-aware mapping moves them to the other one.
  const int stream =
      exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 10.0});
  c.vm(stream).set_numa_node(0);
  for (const int id : c.worker_vm_ids) {
    c.vm(id).set_numa_node(numa_separate ? 1 : 0);
  }
  if (perfcloud) exp::enable_perfcloud(c, core::PerfCloudConfig{});

  Outcome o;
  o.jct = exp::run_job(c, wl::make_spark_logreg(30, 8));
  o.stream_bw = dynamic_cast<const wl::StreamBenchmark*>(c.vm(stream).guest())->achieved_bw();
  if (perfcloud) o.throttled = !c.node_manager(0).cpu_cap_series(stream).empty();
  return o;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 23;
  exp::print_banner(std::cout, "Extension (§IV-D)",
                    "NUMA-aware VM mapping on a dual-socket host vs PerfCloud throttling");

  exp::Table t({"placement", "control", "Spark JCT (s)", "STREAM GB/s", "STREAM throttled?"});
  const auto row = [&](const char* placement, const char* control, const Outcome& o) {
    t.add_row({placement, control, exp::fmt(o.jct, 0), exp::fmt(o.stream_bw / 1e9, 2),
               o.throttled ? "yes" : "no"});
  };
  row("shared sockets", "none", run(false, false, kSeed));
  row("shared sockets", "PerfCloud", run(false, true, kSeed));
  row("NUMA-separated", "none", run(true, false, kSeed));
  row("NUMA-separated", "PerfCloud", run(true, true, kSeed));
  t.print(std::cout);
  std::cout << "\nReading: NUMA separation fixes the interference without costing the\n"
               "antagonist anything; PerfCloud fixes it by throttling. Together, the\n"
               "controller stays idle — placement solved the problem upstream.\n";
  return 0;
}
