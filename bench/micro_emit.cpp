// Emission-path microbenchmark: what does recording every observation cost
// the simulation loop, and how much of that cost does the async writer
// thread take off the barrier phase?
//
// One mid-sized PerfCloud run (8 hosts / 48 workers, antagonist churn, a
// MapReduce job mix) executes three times:
//   none  — no sink attached (the simulation-only floor)
//   sync  — EventSink with inline writes: merge + format + file I/O all on
//           the engine thread at the post-barrier drain point
//   async — EventSink with the background writer: the drain only merges and
//           hands off; formatting and I/O happen off-thread
//
// The headline number is EventSink::drain_seconds() — cumulative engine-
// thread time inside drain(), i.e. the emission cost still sitting on the
// barrier phase. The bench hard-fails unless the sync and async runs produce
// byte-identical files and the same simulation fingerprint as the sink-free
// run. Results go to stdout and BENCH_emit.json; the output files stay on
// disk (emit_{sync,async}.{csv,jsonl}) for scripts/check.sh to diff.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "exp/cluster.hpp"
#include "exp/event_sink.hpp"
#include "exp/report.hpp"
#include "exp/summary.hpp"
#include "hw_context.hpp"
#include "workloads/mix.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 77;
constexpr int kJobs = 12;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

void add_antagonists(exp::Cluster& c, std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::Rng placement_rng = rng.split(0x9fac);
  for (int i = 0; i < 16; ++i) {
    const auto host_idx = static_cast<std::size_t>(
        placement_rng.uniform_int(0, static_cast<std::int64_t>(c.hosts.size()) - 1));
    const std::string& host = c.hosts[host_idx];
    const double start = rng.uniform(0.0, 600.0);
    const double duration = rng.uniform(240.0, 480.0);
    if (i % 2 == 0) {
      exp::add_fio(c, host, wl::FioRandomRead::Params{.duration_s = duration, .start_s = start});
    } else {
      exp::add_stream(c, host,
                      wl::StreamBenchmark::Params{.threads = 16, .duration_s = duration,
                                                  .start_s = start});
    }
  }
}

enum class Mode { kNone, kSync, kAsync };

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kNone: return "none";
    case Mode::kSync: return "sync";
    case Mode::kAsync: return "async";
  }
  return "?";
}

struct RunResult {
  double wall_s = 0.0;
  double drain_s = 0.0;  ///< Engine-thread seconds left on the barrier phase.
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  std::uint64_t batches = 0;
  // Simulation fingerprint — must be identical across all three modes.
  double jct_sum = 0.0;
  int completed = 0;
  double final_time_s = 0.0;
};

RunResult run_once(Mode mode) {
  exp::ClusterParams p;
  p.hosts = 8;
  p.workers = 48;
  p.seed = kSeed;
  p.tick_dt = 0.1;

  const double t0 = now_seconds();
  exp::Cluster c = exp::make_cluster(p);
  add_antagonists(c, kSeed + 33);

  core::PerfCloudConfig cfg;
  cfg.monitor_series_capacity = cfg.correlation_window;
  exp::enable_perfcloud(c, cfg);

  std::unique_ptr<exp::EventSink> sink;
  exp::EventSink::SourceId summary_src = 0;
  if (mode != Mode::kNone) {
    const std::string tag = to_string(mode);
    sink = std::make_unique<exp::EventSink>(
        exp::EventSink::Options{.trace_csv_path = "emit_" + tag + ".csv",
                                .events_jsonl_path = "emit_" + tag + ".jsonl",
                                .async = mode == Mode::kAsync});
    exp::attach_sink(c, *sink);
    summary_src = sink->add_event_source("run");
  }

  sim::Rng mix_rng(kSeed);
  wl::MixParams mp;
  mp.num_jobs = kJobs;
  mp.mean_interarrival_s = 40.0;
  const std::vector<wl::MixEntry> mix = wl::make_mapreduce_mix(mp, mix_rng);
  std::vector<wl::JobId> ids;
  ids.reserve(mix.size());
  for (const wl::MixEntry& e : mix) {
    c.engine->at(sim::SimTime(e.submit_time_s),
                 [&c, &ids, &e](sim::SimTime) { ids.push_back(c.framework->submit(e.spec)); });
  }
  c.engine->run_while(
      [&] { return ids.size() < mix.size() || !c.framework->all_done(); },
      sim::SimTime(20000.0));

  RunResult r;
  r.final_time_s = c.engine->now().seconds();
  for (const wl::JobId id : ids) {
    const wl::Job* job = c.framework->find_job(id);
    if (job != nullptr && job->completed()) {
      r.jct_sum += job->jct();
      ++r.completed;
    }
  }
  if (sink != nullptr) {
    exp::record(*sink, summary_src, exp::summarize(*c.framework));
    sink->close();
    r.drain_s = sink->drain_seconds();
    r.samples = sink->samples_recorded();
    r.events = sink->events_recorded();
    r.batches = sink->batches_drained();
  }
  r.wall_s = now_seconds() - t0;
  return r;
}

/// Heavy-volume synthetic stream: many columns, many samples per drain, so
/// formatting + file I/O dominate over the merge. This is where the async
/// writer earns its keep — the cluster run above emits a few dozen records
/// per drain, where either path is near-free.
struct SyntheticResult {
  double drain_s = 0.0;
  std::uint64_t samples = 0;
};

SyntheticResult run_synthetic(bool async, const std::string& tag) {
  constexpr int kColumns = 64;
  constexpr int kBatches = 1500;
  exp::EventSink sink(exp::EventSink::Options{.trace_csv_path = "emit_synth_" + tag + ".csv",
                                              .events_jsonl_path = "emit_synth_" + tag + ".jsonl",
                                              .async = async});
  std::vector<exp::EventSink::SourceId> cols;
  cols.reserve(kColumns);
  for (int c = 0; c < kColumns; ++c) cols.push_back(sink.add_trace_column("c" + std::to_string(c)));
  const auto src = sink.add_event_source("synth");
  for (int b = 0; b < kBatches; ++b) {
    const sim::SimTime t(b * 0.1);
    for (int c = 0; c < kColumns; ++c) {
      sink.emit_sample(cols[static_cast<std::size_t>(c)], t, b * 0.001 + c);
    }
    if (b % 50 == 0) sink.emit_event(src, t, "mark b=" + std::to_string(b), b);
    sink.drain(t);
  }
  sink.close();
  return SyntheticResult{sink.drain_seconds(), sink.samples_recorded()};
}

}  // namespace

int main() {
  std::cout << "micro_emit: one PerfCloud run (8 hosts / 48 workers, " << kJobs
            << " jobs, antagonist churn)\nwithout a sink, with synchronous emission, and "
               "with the async writer thread\n\n";

  const std::vector<Mode> modes = {Mode::kNone, Mode::kSync, Mode::kAsync};
  std::vector<RunResult> results;
  for (const Mode m : modes) {
    std::cout << "  mode=" << to_string(m) << " ..." << std::flush;
    results.push_back(run_once(m));
    std::cout << " " << results.back().wall_s << " s wall\n";
  }
  const RunResult& none = results[0];
  const RunResult& sync = results[1];
  const RunResult& async_r = results[2];
  std::cout << "\n";

  // Gate 1: observation must not change the observed — all three runs share
  // one simulation fingerprint. Exact equality, as in micro_shard.
  for (const RunResult& r : results) {
    if (r.jct_sum != none.jct_sum || r.completed != none.completed ||
        r.final_time_s != none.final_time_s) {
      std::cerr << "FAIL: attaching a sink changed the simulation fingerprint\n";
      return 1;
    }
  }

  // Gate 2: sync and async emission must produce byte-identical files.
  const bool csv_same = slurp("emit_sync.csv") == slurp("emit_async.csv");
  const bool jsonl_same = slurp("emit_sync.jsonl") == slurp("emit_async.jsonl");
  if (!csv_same || !jsonl_same || slurp("emit_sync.csv").empty()) {
    std::cerr << "FAIL: sync and async emission diverged (csv_same=" << csv_same
              << " jsonl_same=" << jsonl_same << ")\n";
    return 1;
  }

  // Heavy-volume synthetic stream, sync then async, with its own byte gate.
  const SyntheticResult synth_sync = run_synthetic(false, "sync");
  const SyntheticResult synth_async = run_synthetic(true, "async");
  if (slurp("emit_synth_sync.csv") != slurp("emit_synth_async.csv") ||
      slurp("emit_synth_sync.jsonl") != slurp("emit_synth_async.jsonl") ||
      slurp("emit_synth_sync.csv").empty()) {
    std::cerr << "FAIL: synthetic sync and async emission diverged\n";
    return 1;
  }

  exp::Table t({"mode", "wall s", "drain s on engine thread", "samples", "events"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    t.add_row(to_string(modes[i]),
              {r.wall_s, r.drain_s, static_cast<double>(r.samples), static_cast<double>(r.events)},
              3);
  }
  t.print(std::cout);
  std::cout << "\ncluster run barrier-phase emission time: sync " << sync.drain_s
            << " s, async " << async_r.drain_s << " s (" << sync.batches << " small batches)\n"
            << "synthetic heavy stream (" << synth_sync.samples << " samples): sync "
            << synth_sync.drain_s << " s, async " << synth_async.drain_s << " s ("
            << (synth_async.drain_s > 0.0 ? synth_sync.drain_s / synth_async.drain_s : 0.0)
            << "x less engine-thread time)\n"
            << "sync and async output files are byte-identical in both scenarios\n";

  std::ofstream json("BENCH_emit.json");
  json << "{\n"
       << "  \"topology\": {\"hosts\": 8, \"workers\": 48, \"jobs\": " << kJobs << "},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"samples\": " << sync.samples << ",\n"
       << "  \"events\": " << sync.events << ",\n"
       << "  \"batches\": " << sync.batches << ",\n"
       << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << "    {\"mode\": \"" << to_string(modes[i]) << "\", \"wall_s\": " << r.wall_s
         << ", \"barrier_phase_emit_s\": " << r.drain_s << "}"
         << (i + 1 < results.size() ? ",\n" : "\n");
  }
  json << "  ],\n"
       << "  \"synthetic\": {\"samples\": " << synth_sync.samples
       << ", \"sync_barrier_phase_emit_s\": " << synth_sync.drain_s
       << ", \"async_barrier_phase_emit_s\": " << synth_async.drain_s
       << ", \"drain_speedup_async\": "
       << (synth_async.drain_s > 0.0 ? synth_sync.drain_s / synth_async.drain_s : 0.0) << "},\n"
       << "  \"sync_async_byte_identical\": true,\n"
       << "  \"fingerprint_identical\": true\n"
       << "}\n";
  std::cout << "\nwrote BENCH_emit.json\n";
  return 0;
}
