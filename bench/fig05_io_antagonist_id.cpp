// Figure 5 — Identifying the I/O antagonist by cross-correlating the
// victim's iowait-ratio deviation signal with each colocated VM's I/O
// throughput.
//
// Setup (§III-B): MapReduce terasort VMs colocated with VMs running fio
// random read, sysbench oltp (8 threads, 120 s), and sysbench cpu
// (4 threads). The suspects arrive at different times, as tenants do in a
// real cloud: oltp at t=10, fio at t=30. Correlations are evaluated online,
// with the window ending at the DETECTION INSTANT — the first sample where
// the deviation crosses H = 10 after the antagonist arrives, which is the
// moment a node manager decides whom to throttle. Expected shape: fio
// correlates > 0.8 with a dataset as small as three samples; oltp and cpu
// stay low.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"
#include "sim/correlation.hpp"

using namespace perfcloud;

namespace {

/// Victim-signal prefix ending at sample index `end` (inclusive).
sim::TimeSeries prefix_of(const sim::TimeSeries& s, std::size_t end) {
  sim::TimeSeries out;
  for (std::size_t i = 0; i <= end && i < s.size(); ++i) out.add(s.time(i), s.value(i));
  return out;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 3;

  exp::Cluster c = bench::motivation_cluster(kSeed);
  const int oltp = exp::add_oltp(c, "host-0", wl::SysbenchOltp::Params{.start_s = 10.0});
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 30.0});
  const int cpu = exp::add_sysbench_cpu(c, "host-0");
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);

  exp::run_job(c, wl::make_terasort(30, 30));

  core::NodeManager& nm = c.node_manager(0);
  const sim::TimeSeries& victim = nm.io_signal("hadoop");

  // --- (a)/(b): normalized victim signal and suspect throughputs ---
  exp::print_banner(std::cout, "Fig 5(a,b)",
                    "normalized victim deviation signal and suspect I/O throughputs");
  exp::Table ts({"t (s)", "iowait dev (norm)", "fio IO (norm)", "oltp IO (norm)", "cpu IO (norm)"});
  const auto vn = victim.normalized_by_peak();
  const auto norm_suspect = [&](int vm) {
    const sim::TimeSeries& s = nm.monitor().io_throughput_series(vm);
    std::vector<double> aligned = sim::align_to(victim, s);
    double peak = 0.0;
    for (double v : aligned) peak = std::max(peak, std::abs(v));
    if (peak > 0.0) {
      for (double& v : aligned) v /= peak;
    }
    return aligned;
  };
  const auto f = norm_suspect(fio);
  const auto o = norm_suspect(oltp);
  const auto k = norm_suspect(cpu);
  for (std::size_t i = 0; i < victim.size(); ++i) {
    ts.add_row(exp::fmt(victim.time(i).seconds(), 0), {vn[i], f[i], o[i], k[i]}, 2);
  }
  ts.print(std::cout);

  // --- (c): correlation vs dataset size at the detection instant ---
  std::size_t det_idx = victim.size() - 1;
  for (std::size_t i = 0; i < victim.size(); ++i) {
    if (victim.time(i).seconds() > 30.0 && victim.value(i) > 10.0) {
      det_idx = i;
      break;
    }
  }
  const sim::TimeSeries online_victim = prefix_of(victim, det_idx);

  exp::print_banner(std::cout, "Fig 5(c)",
                    "Pearson correlation vs dataset size (window ending at detection, t=" +
                        exp::fmt(victim.time(det_idx).seconds(), 0) + " s)");
  exp::Table t({"dataset size", "fio", "sysbench-oltp", "sysbench-cpu"});
  for (const std::size_t window : {std::size_t{3}, std::size_t{6}, std::size_t{9},
                                   std::size_t{12}, std::size_t{15}}) {
    const auto corr = [&](int vm) {
      return sim::pearson_missing_as_zero(online_victim, nm.monitor().io_throughput_series(vm),
                                          window);
    };
    t.add_row(std::to_string(window), {corr(fio), corr(oltp), corr(cpu)}, 3);
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: fio > 0.8 already at dataset size 3 (three 5 s intervals);\n"
               "sysbench oltp and cpu stay clearly below the 0.8 threshold.\n";
  return 0;
}
