// Hot-path memory-layout microbenchmark (DESIGN.md §5i).
//
// Part A — store-level A/B on a synthetic quantum-shaped workload. The
// per-quantum pipeline used to route every signal append and every
// victim/suspect pair-state update through node-based maps: deviation
// signals in std::map<std::string, TimeSeries> (a fresh std::string key
// built per lookup) and correlation state in a map keyed by the victim
// series' ADDRESS. The overhaul keys both by dense ints — interned AppIds
// and slot stores. Both variants run the identical workload and must
// produce a bit-identical fingerprint; the bench hard-fails otherwise.
//
// Part B — end-to-end: a warmed single-host cluster with an fio antagonist,
// driven one control quantum at a time, reporting µs per quantum and (via
// the counting operator-new hook this binary links) heap allocations per
// quantum. The ctest gate pins a growth-free window at exactly zero; the
// long horizon here additionally amortizes the episodic deviation-series
// doublings, so the honest per-quantum figure is near-zero, not zero.
//
// Results go to stdout and BENCH_locality.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/cluster.hpp"
#include "exp/report.hpp"
#include "hw_context.hpp"
#include "sim/alloc_gauge.hpp"
#include "sim/interner.hpp"
#include "sim/slot_store.hpp"
#include "sim/time_series.hpp"
#include "workloads/benchmarks.hpp"

using namespace perfcloud;

namespace {

constexpr int kApps = 16;
constexpr int kVmsPerApp = 8;
constexpr int kQuanta = 50000;
constexpr int kReps = 3;

double now_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Pearson-style accumulator, deliberately shaped like the identifier's pair
// state (minus the rings): enough arithmetic per touch that the store's
// lookup/locality cost is measured against real work, not an empty loop.
struct PairState {
  double n = 0.0, sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  void add(double x, double y) {
    n += 1.0;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
};

// Deterministic per-(app, vm, quantum) sample values, identical across
// variants. Cheap integer hash, no shared state.
double sample_value(int app, int vm, int q) {
  std::uint64_t h = static_cast<std::uint64_t>(app) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(vm) * 0xbf58476d1ce4e5b9ull +
                    static_cast<std::uint64_t>(q) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<double>(h % 100000) * 1e-3;
}

struct VariantResult {
  double wall_s = 0.0;
  double ns_per_quantum = 0.0;
  double fingerprint = 0.0;
};

// Before: string-keyed signal map (temporary std::string per lookup, as the
// old accessor-path did) and pair state keyed by the victim's address.
VariantResult run_legacy() {
  std::vector<std::string> names;
  for (int a = 0; a < kApps; ++a) names.push_back("tenant-analytics-app-" + std::to_string(a));

  std::map<std::string, sim::TimeSeries> signals;
  for (const std::string& n : names) signals.emplace(n, sim::TimeSeries(n));
  std::map<std::pair<const sim::TimeSeries*, int>, PairState> pairs;

  double fingerprint = 0.0;
  const double t0 = now_seconds();
  for (int q = 0; q < kQuanta; ++q) {
    for (int a = 0; a < kApps; ++a) {
      const std::string key(std::string_view(names[a]));  // the old temp-key churn
      sim::TimeSeries& victim = signals.find(key)->second;
      const double x = sample_value(a, -1, q);
      victim.add(sim::SimTime(5.0 * q), x);
      for (int vm = 0; vm < kVmsPerApp; ++vm) {
        PairState& st = pairs[{&victim, vm}];
        st.add(x, sample_value(a, vm, q));
        fingerprint += st.sxy - st.sx * st.sy;
      }
    }
  }
  VariantResult r;
  r.wall_s = now_seconds() - t0;
  r.ns_per_quantum = r.wall_s * 1e9 / kQuanta;
  r.fingerprint = fingerprint;
  return r;
}

// After: interned AppIds into slot stores; pair state slot-keyed by the
// stable (victim key, vm) int — no strings, no pointers, no node hops.
VariantResult run_interned() {
  sim::Interner interner;
  sim::SlotMap<sim::TimeSeries> signals;
  for (int a = 0; a < kApps; ++a) {
    const sim::Interner::Id id = interner.intern("tenant-analytics-app-" + std::to_string(a));
    signals.try_emplace(id, sim::TimeSeries(interner.name(id)));
  }
  sim::SlotMap<PairState> pairs;

  double fingerprint = 0.0;
  const double t0 = now_seconds();
  for (int q = 0; q < kQuanta; ++q) {
    for (int a = 0; a < kApps; ++a) {
      sim::TimeSeries& victim = *signals.find(a);
      const double x = sample_value(a, -1, q);
      victim.add(sim::SimTime(5.0 * q), x);
      for (int vm = 0; vm < kVmsPerApp; ++vm) {
        PairState* st = pairs.find(a * kVmsPerApp + vm);
        if (st == nullptr) st = pairs.try_emplace(a * kVmsPerApp + vm).first;
        st->add(x, sample_value(a, vm, q));
        fingerprint += st->sxy - st->sx * st->sy;
      }
    }
  }
  VariantResult r;
  r.wall_s = now_seconds() - t0;
  r.ns_per_quantum = r.wall_s * 1e9 / kQuanta;
  r.fingerprint = fingerprint;
  return r;
}

template <typename Fn>
VariantResult best_of(Fn fn) {
  VariantResult best = fn();
  for (int i = 1; i < kReps; ++i) {
    const VariantResult r = fn();
    if (r.fingerprint != best.fingerprint) {
      std::cerr << "FAIL: fingerprint drifted between repetitions of one variant\n";
      std::exit(1);
    }
    if (r.wall_s < best.wall_s) best = r;
  }
  return best;
}

struct EndToEnd {
  double us_per_quantum = 0.0;
  double allocs_per_quantum = 0.0;
  double signal_sum = 0.0;  // fingerprint: deviation-signal mass after the run
};

// Part B: the real pipeline, one host, warmed, stepped by hand so each
// iteration is exactly one monitoring/identification quantum.
EndToEnd run_end_to_end() {
  exp::ClusterParams p;
  p.workers = 6;
  p.seed = 41;
  p.shards = 1;
  exp::Cluster c = exp::make_cluster(p);
  exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duration_s = 10000.0, .start_s = 12.0});
  core::PerfCloudConfig cfg;
  cfg.monitor_series_capacity = 32;
  exp::enable_perfcloud(c, cfg, /*control=*/false);
  c.framework->submit(wl::make_terasort(24, 24));
  exp::run_for(c, 200.0);

  core::NodeManager& nm = c.node_manager(0);
  sim::SimTime now = c.engine->now();
  for (int i = 0; i < 4; ++i) {  // warm this thread's arena and caches
    now += 5.0;
    nm.local_step(now);
  }

  constexpr int kSteps = 512;
  const sim::AllocGaugeSnapshot before = sim::alloc_gauge_read();
  const double t0 = now_seconds();
  for (int i = 0; i < kSteps; ++i) {
    now += 5.0;
    nm.local_step(now);
  }
  const double wall = now_seconds() - t0;
  const sim::AllocGaugeSnapshot after = sim::alloc_gauge_read();

  EndToEnd e;
  e.us_per_quantum = wall * 1e6 / kSteps;
  e.allocs_per_quantum =
      static_cast<double>(after.allocs - before.allocs) / static_cast<double>(kSteps);
  for (const double v : nm.io_signal("hadoop").values()) e.signal_sum += v;
  return e;
}

}  // namespace

int main() {
  std::cout << "micro_locality: " << kApps << " apps x " << kVmsPerApp << " suspects, " << kQuanta
            << " quanta per variant, best of " << kReps << " reps\n"
            << "hardware threads available: " << std::thread::hardware_concurrency() << "\n"
            << "allocation hook linked: " << (sim::alloc_gauge_linked() ? "yes" : "no") << "\n\n";

  std::cout << "  string/pointer-keyed maps ..." << std::flush;
  const VariantResult legacy = best_of(run_legacy);
  std::cout << " " << legacy.wall_s << " s wall\n";
  std::cout << "  interned ids + slot stores ..." << std::flush;
  const VariantResult interned = best_of(run_interned);
  std::cout << " " << interned.wall_s << " s wall\n\n";

  // Layout must never change results: both variants fold the identical
  // arithmetic in the identical order. Bit equality, no tolerance.
  if (legacy.fingerprint != interned.fingerprint) {
    std::cerr << "FAIL: store variants disagree (legacy " << legacy.fingerprint << ", interned "
              << interned.fingerprint << ")\n";
    return 1;
  }

  std::cout << "  end-to-end warmed quantum ..." << std::flush;
  const EndToEnd e2e = run_end_to_end();
  std::cout << " " << e2e.us_per_quantum << " us/quantum\n\n";

  exp::Table t({"store variant", "wall s", "ns/quantum"});
  t.add_row("string/pointer-keyed maps", {legacy.wall_s, legacy.ns_per_quantum}, 2);
  t.add_row("interned ids + slot stores", {interned.wall_s, interned.ns_per_quantum}, 2);
  t.print(std::cout);

  const double speedup = legacy.ns_per_quantum / interned.ns_per_quantum;
  std::cout << "\ninterned/slot layout vs node-based maps: " << speedup << "x\n"
            << "end-to-end steady-state quantum: " << e2e.us_per_quantum << " us, "
            << e2e.allocs_per_quantum
            << " heap allocations per quantum (amortized; episodic series growth included)\n";
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "\nnote: only 1 hardware thread available — absolute timings are\n"
                 "machine-specific; the store-variant speedup and the allocation\n"
                 "count stand.\n";
  }
  std::cout << "\nfingerprint: store A/B " << legacy.fingerprint << " (bit-identical across "
            << "variants), end-to-end signal mass " << e2e.signal_sum << "\n";

  std::ofstream json("BENCH_locality.json");
  json << "{\n"
       << "  \"workload\": {\"apps\": " << kApps << ", \"suspects_per_app\": " << kVmsPerApp
       << ", \"quanta\": " << kQuanta << ", \"reps\": " << kReps << "},\n"
       << "  \"hw_context\": " << bench::hw_context_json() << ",\n"
       << "  \"runs\": [\n"
       << "    {\"configuration\": \"string/pointer-keyed maps\", \"wall_s\": " << legacy.wall_s
       << ", \"ns_per_quantum\": " << legacy.ns_per_quantum << "},\n"
       << "    {\"configuration\": \"interned ids + slot stores\", \"wall_s\": "
       << interned.wall_s << ", \"ns_per_quantum\": " << interned.ns_per_quantum << "}\n"
       << "  ],\n"
       << "  \"interned_speedup_over_maps\": " << speedup << ",\n"
       << "  \"end_to_end\": {\"us_per_quantum\": " << e2e.us_per_quantum
       << ", \"allocs_per_quantum\": " << e2e.allocs_per_quantum << "},\n"
       << "  \"fingerprint_identical\": true\n"
       << "}\n";
  std::cout << "\nwrote BENCH_locality.json\n";
  return 0;
}
