// Figure 6 — Identifying processor-resource antagonists by correlating the
// victim's CPI deviation signal with colocated VMs' LLC miss rates.
//
// Setup (§III-B): Spark logistic regression VMs colocated with TWO VMs each
// running STREAM with 8 threads (individually weak, collectively strong —
// the paper's point about antagonist *groups*), plus sysbench oltp and
// sysbench cpu. Expected: both STREAM VMs correlate > 0.8 via their LLC
// miss rates; oltp/cpu stay low; missing LLC samples count as zero.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"
#include "core/identifier.hpp"
#include "sim/correlation.hpp"

using namespace perfcloud;

int main() {
  constexpr std::uint64_t kSeed = 13;

  exp::Cluster c = bench::motivation_cluster(kSeed);
  const wl::StreamBenchmark::Params stream_p{.threads = 8, .start_s = 15.0};
  const int stream1 = exp::add_stream(c, "host-0", stream_p);
  const int stream2 = exp::add_stream(c, "host-0", stream_p);
  const int oltp = exp::add_oltp(c, "host-0", wl::SysbenchOltp::Params{.duration_s = 600.0});  // long-resident tenant
  const int cpu = exp::add_sysbench_cpu(c, "host-0");
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);

  exp::run_job(c, wl::make_spark_logreg(30, 8));

  core::NodeManager& nm = c.node_manager(0);
  const sim::TimeSeries& victim = nm.cpi_signal("hadoop");

  // --- (a)/(b): normalized signals ---
  exp::print_banner(std::cout, "Fig 6(a,b)",
                    "normalized CPI deviation and suspect LLC miss rates");
  exp::Table ts({"t (s)", "CPI dev (norm)", "stream-1", "stream-2", "oltp", "cpu"});
  const auto vn = victim.normalized_by_peak();
  const auto norm_llc = [&](int vm) {
    std::vector<double> aligned = sim::align_to(victim, nm.monitor().llc_miss_series(vm));
    double peak = 0.0;
    for (double v : aligned) peak = std::max(peak, std::abs(v));
    if (peak > 0.0) {
      for (double& v : aligned) v /= peak;
    }
    return aligned;
  };
  const auto s1 = norm_llc(stream1);
  const auto s2 = norm_llc(stream2);
  const auto ol = norm_llc(oltp);
  const auto cp = norm_llc(cpu);
  for (std::size_t i = 0; i < victim.size(); ++i) {
    ts.add_row(exp::fmt(victim.time(i).seconds(), 0), {vn[i], s1[i], s2[i], ol[i], cp[i]}, 2);
  }
  ts.print(std::cout);

  // --- (c): correlation coefficients, evaluated online at the detection
  //     instant (first CPI-deviation sample above H = 1 after the STREAM
  //     VMs arrive) over the node manager's correlation window ---
  std::size_t det_idx = victim.size() - 1;
  for (std::size_t i = 0; i < victim.size(); ++i) {
    if (victim.time(i).seconds() > 15.0 && victim.value(i) > 1.0) {
      det_idx = i;
      break;
    }
  }
  sim::TimeSeries online_victim;
  for (std::size_t i = 0; i <= det_idx; ++i) online_victim.add(victim.time(i), victim.value(i));

  exp::print_banner(std::cout, "Fig 6(c)",
                    "correlation of CPI deviation with suspect LLC miss rates (at detection, t=" +
                        exp::fmt(victim.time(det_idx).seconds(), 0) + " s)");
  // Score through the same identifier the node manager runs: Pearson with
  // missing-as-zero plus the high-miss-rate magnitude gate of SIII-B.
  const core::AntagonistIdentifier ident{core::PerfCloudConfig{}};
  std::vector<core::SuspectSignal> sig;
  const std::vector<std::pair<std::string, int>> named = {{"stream-1", stream1},
                                                          {"stream-2", stream2},
                                                          {"sysbench-oltp", oltp},
                                                          {"sysbench-cpu", cpu}};
  for (const auto& [label, vm] : named) {
    sig.push_back(core::SuspectSignal{vm, &nm.monitor().llc_miss_series(vm)});
  }
  const auto scores = ident.score(online_victim, sig);
  exp::Table t({"suspect", "correlation", "identified antagonist?"});
  for (std::size_t i = 0; i < named.size(); ++i) {
    t.add_row({named[i].first, exp::fmt(scores[i].correlation, 3),
               scores[i].antagonist ? "yes" : "no"});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the two STREAM VMs correlate above 0.8 (a group of\n"
               "antagonists none of which is decisive alone); oltp and cpu do not.\n";
  return 0;
}
