// Figure 12 — Performance variability across repeated executions.
//
// A MapReduce terasort (50 tasks) and a Spark logistic regression (50 tasks
// per stage) run 30 times each on the 15-host cluster; on every repetition
// the fio/STREAM antagonist VMs land on different random hosts. Reported:
// box statistics of the normalized JCT under LATE, Dolly-4, and PerfCloud.
// Expected shape: PerfCloud's median and spread are the smallest, because
// its mitigation does not depend on where the antagonists happen to land —
// unlike LATE/Dolly, whose duplicate work can itself hit contended hosts.
#include <array>
#include <functional>
#include <iostream>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "common.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "sim/stats.hpp"

using namespace perfcloud;

namespace {

constexpr int kRepetitions = 30;

double run_once(base::Scheme scheme, const wl::JobSpec& job, std::uint64_t seed) {
  exp::Cluster c = bench::large_scale_cluster(seed);

  // Random antagonist placement, fresh per repetition.
  sim::Rng rng(seed * 977 + 13);
  for (int i = 0; i < 12; ++i) {
    const auto host_idx =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(c.hosts.size()) - 1));
    if (i % 2 == 0) {
      exp::add_fio(c, c.hosts[host_idx], wl::FioRandomRead::Params{.start_s = rng.uniform(0.0, 20.0)});
    } else {
      exp::add_stream(c, c.hosts[host_idx],
                      wl::StreamBenchmark::Params{.threads = 16, .start_s = rng.uniform(0.0, 20.0)});
    }
  }

  if (scheme == base::Scheme::kLate) {
    c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
        base::LateSpeculator::Params{.min_runtime_s = 10.0}, 150 * 2));
  }
  if (scheme == base::Scheme::kPerfCloud) {
    core::PerfCloudConfig cfg;
    cfg.monitor_series_capacity = cfg.correlation_window;  // flat monitor memory
    exp::enable_perfcloud(c, cfg);
  }

  if (base::dolly_clones(scheme) > 1) {
    const auto ids = c.framework->submit_cloned(job, base::dolly_clones(scheme));
    exp::run_until_done(c, 36000.0);
    return c.framework->group_jct(c.framework->find_job(ids[0])->clone_group);
  }
  return exp::run_job(c, job);
}

constexpr std::array<base::Scheme, 3> kSchemes = {base::Scheme::kLate, base::Scheme::kDolly2,
                                                  base::Scheme::kPerfCloud};

/// JCTs for one workload, flattened as [scheme][repetition], preceded by the
/// clean baseline — the unit the parallel runner hands back in order.
void report(const std::string& figure, const wl::JobSpec& job, double clean_jct,
            const std::vector<double>& jcts) {
  exp::print_banner(std::cout, figure,
                    job.name + " x" + std::to_string(kRepetitions) +
                        " with random antagonist placement: normalized JCT box stats");
  exp::Table t({"scheme", "min", "q1", "median", "q3", "max", "spread (q3-q1)"});
  for (std::size_t si = 0; si < kSchemes.size(); ++si) {
    std::vector<double> norm;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      norm.push_back(jcts[si * kRepetitions + static_cast<std::size_t>(rep)] / clean_jct);
    }
    const sim::BoxStats b = sim::box_stats_of(norm);
    t.add_row(base::to_string(kSchemes[si]), {b.min, b.q1, b.median, b.q3, b.max, b.q3 - b.q1}, 2);
  }
  t.print(std::cout);
}

double clean_jct_of(const wl::JobSpec& job) {
  exp::Cluster c = bench::large_scale_cluster(555);
  return exp::run_job(c, job);
}

}  // namespace

int main() {
  const exp::ParallelRunner pool(exp::ParallelRunner::threads_from_env());
  std::cout << "Running 2 workloads x 3 schemes x " << kRepetitions
            << " repetitions on the 15-host cluster; this takes a little while...\n";
  std::cerr << "[fig12] running on " << pool.threads() << " thread(s)\n";

  const wl::JobSpec terasort = wl::make_terasort(50, 50);
  const wl::JobSpec logreg = wl::make_spark_logreg(50, 8);

  // Every (workload, scheme, repetition) run — and the two clean baselines —
  // is an independent cluster, so all 182 go through the pool at once.
  std::vector<std::function<double()>> tasks;
  tasks.emplace_back([&] { return clean_jct_of(terasort); });
  tasks.emplace_back([&] { return clean_jct_of(logreg); });
  for (const wl::JobSpec* job : {&terasort, &logreg}) {
    for (const base::Scheme s : kSchemes) {
      for (int rep = 0; rep < kRepetitions; ++rep) {
        tasks.emplace_back(
            [s, job, rep] { return run_once(s, *job, 1000 + static_cast<std::uint64_t>(rep)); });
      }
    }
  }
  const std::vector<double> results = pool.run(tasks);

  const std::size_t per_workload = kSchemes.size() * kRepetitions;
  report("Fig 12(a)", terasort, results[0],
         {results.begin() + 2, results.begin() + 2 + static_cast<std::ptrdiff_t>(per_workload)});
  report("Fig 12(b)", logreg, results[1],
         {results.begin() + 2 + static_cast<std::ptrdiff_t>(per_workload), results.end()});

  std::cout << "\nPaper shape: PerfCloud shows the lowest median and the tightest\n"
               "spread; LATE and Dolly vary with the luck of antagonist placement.\n";
  return 0;
}
