// Figure 4 — The std-dev of CPI across the application's VMs as the
// detector of shared-processor-resource contention.
//
// Peak CPI deviation for every benchmark, alone vs with a colocated
// 16-thread STREAM VM. Alone it stays below the paper's threshold of 1;
// with STREAM it exceeds 1, and Spark benchmarks (higher memory
// sensitivity) show the larger deviations.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

sim::TimeSeries cpi_signal_for(const wl::JobSpec& job, bool with_stream, std::uint64_t seed) {
  exp::Cluster c = bench::motivation_cluster(seed);
  if (with_stream) {
    exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16});
  }
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  exp::run_job(c, job);
  return c.node_manager(0).cpi_signal("hadoop");
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 9;

  // --- time series for one Spark benchmark ---
  const wl::JobSpec logreg = wl::make_spark_logreg(20, 8);
  const sim::TimeSeries alone = cpi_signal_for(logreg, false, kSeed);
  const sim::TimeSeries contended = cpi_signal_for(logreg, true, kSeed);
  exp::print_banner(std::cout, "Fig 4 (timeline)",
                    "std-dev of CPI across Hadoop VMs (Spark logreg), alone vs with STREAM");
  exp::Table ts({"t (s)", "alone", "with STREAM"});
  const std::size_t n = std::max(alone.size(), contended.size());
  for (std::size_t i = 0; i < n; ++i) {
    ts.add_row(exp::fmt(5.0 * static_cast<double>(i + 1), 0),
               {i < alone.size() ? alone.value(i) : 0.0,
                i < contended.size() ? contended.value(i) : 0.0},
               3);
  }
  ts.print(std::cout);

  // --- peaks across all benchmarks ---
  exp::print_banner(std::cout, "Fig 4",
                    "peak CPI deviation per benchmark, alone vs with STREAM-16");
  exp::Table t({"benchmark", "peak alone", "peak with STREAM", "alone < 1?", "STREAM > 1?"});
  for (const std::string& name : wl::benchmark_names()) {
    // Larger jobs give the 5 s monitor enough samples.
    const wl::JobSpec job = wl::make_benchmark(name, 30);
    const double pa = cpi_signal_for(job, false, kSeed).peak();
    const double ps = cpi_signal_for(job, true, kSeed).peak();
    t.add_row({name, exp::fmt(pa, 3), exp::fmt(ps, 3), pa < 1.0 ? "yes" : "NO",
               ps > 1.0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: peak deviation < 1 alone, well above 1 under STREAM;\n"
               "Spark benchmarks show the largest deviations and degradation.\n";
  return 0;
}
