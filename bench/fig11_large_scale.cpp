// Figure 11 — Large-scale evaluation on the 152-node / 15-host cluster.
//
// Two mixes of 100 MapReduce and 100 Spark jobs (80 % small, §IV-C) run
// under LATE, Dolly-2/4/6, and PerfCloud while fio and STREAM antagonist
// VMs come and go on random hosts. Reported per scheme:
//  (a) breakdown of MapReduce job degradation (vs a clean run of the same
//      mix) into < 10 %, 10-30 %, > 30 % buckets;
//  (b) the same for Spark jobs;
//  (c) resource-utilization efficiency (successful task time / all task
//      time including killed clones and speculative copies).
#include <functional>
#include <iostream>
#include <map>

#include "baselines/dolly.hpp"
#include "baselines/late.hpp"
#include "baselines/scheme.hpp"
#include "common.hpp"
#include "exp/parallel_runner.hpp"
#include "exp/report.hpp"
#include "sim/stats.hpp"
#include "workloads/mix.hpp"

using namespace perfcloud;

namespace {

constexpr std::uint64_t kSeed = 101;
constexpr int kJobsPerMix = 100;

std::vector<wl::MixEntry> make_mix(bool spark) {
  sim::Rng rng(kSeed + (spark ? 1 : 0));
  wl::MixParams p;
  p.num_jobs = kJobsPerMix;
  p.mean_interarrival_s = 60.0;
  return spark ? wl::make_spark_mix(p, rng) : wl::make_mapreduce_mix(p, rng);
}

/// Boot antagonist VMs with random placement and random activity episodes.
/// The paper re-randomizes antagonist placement "on each job execution"
/// (§IV-C); the effective picture is a population of antagonist tenants that
/// are long-lived relative to any single job, arriving and leaving on their
/// own schedule.
void add_antagonists(exp::Cluster& c, std::uint64_t seed) {
  // Placement draws come from their own stream: host selection shares no
  // state with the episode-schedule draws below, so changing the host count
  // (or any sharding of the hosts) can never perturb when antagonists run,
  // and vice versa.
  sim::Rng rng(seed);
  sim::Rng placement_rng = rng.split(0x9fac);
  for (int i = 0; i < 40; ++i) {
    const auto host_idx = static_cast<std::size_t>(
        placement_rng.uniform_int(0, static_cast<std::int64_t>(c.hosts.size()) - 1));
    const std::string& host = c.hosts[host_idx];
    const double start = rng.uniform(0.0, 5600.0);
    const double duration = rng.uniform(240.0, 600.0);
    if (i % 2 == 0) {
      exp::add_fio(c, host,
                   wl::FioRandomRead::Params{.duration_s = duration, .start_s = start});
    } else {
      exp::add_stream(c, host,
                      wl::StreamBenchmark::Params{.threads = 16, .duration_s = duration,
                                                  .start_s = start});
    }
  }
}

struct SchemeResult {
  std::vector<double> jct;  // per logical job, submission order
  double efficiency = 1.0;
};

SchemeResult run_mix(base::Scheme scheme, bool spark, bool clean) {
  exp::Cluster c = bench::large_scale_cluster(kSeed + (spark ? 7 : 0));
  if (!clean) add_antagonists(c, kSeed + 33);

  const int clones = base::dolly_clones(scheme);
  if (scheme == base::Scheme::kLate) {
    const int total_slots = 150 * 2;
    c.framework->set_speculator(std::make_unique<base::LateSpeculator>(
        base::LateSpeculator::Params{.min_runtime_s = 10.0}, total_slots));
  }
  if (scheme == base::Scheme::kPerfCloud && !clean) {
    core::PerfCloudConfig cfg;
    // Identification never looks past its correlation window, so bounding
    // the monitor's suspect series there keeps long-run memory flat without
    // changing any decision.
    cfg.monitor_series_capacity = cfg.correlation_window;
    exp::enable_perfcloud(c, cfg);
  }

  // Schedule job submissions at the mix arrival times. Dolly clones only
  // small jobs (its design point: full cloning is affordable for the ~80 %
  // of jobs with few tasks); large jobs run a single copy.
  const std::vector<wl::MixEntry> mix = make_mix(spark);
  std::vector<std::vector<wl::JobId>> submitted(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const wl::MixEntry& e = mix[i];
    const bool small = e.spec.stages[0].num_tasks < 10;
    const int n = (clones > 1 && small) ? clones : 1;
    c.engine->at(sim::SimTime(e.submit_time_s), [&c, &submitted, &e, i, n](sim::SimTime) {
      if (n > 1) {
        submitted[i] = c.framework->submit_cloned(e.spec, n);
      } else {
        submitted[i] = {c.framework->submit(e.spec)};
      }
    });
  }

  c.engine->run_while(
      [&] {
        return submitted.back().empty() || !c.framework->all_done();
      },
      sim::SimTime(40000.0));

  SchemeResult r;
  r.efficiency = c.framework->utilization_efficiency();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    // A cloned job's JCT is its *fastest* completed clone — first finisher
    // wins by Dolly's design; the losers are killed or ignored.
    double jct = -1.0;
    for (const wl::JobId id : submitted[i]) {
      const wl::Job* job = c.framework->find_job(id);
      if (job != nullptr && job->completed() && (jct < 0.0 || job->jct() < jct)) {
        jct = job->jct();
      }
    }
    r.jct.push_back(jct);
  }
  return r;
}

void print_breakdown(const std::string& title, const std::vector<base::Scheme>& schemes,
                     const std::map<base::Scheme, SchemeResult>& results,
                     const SchemeResult& clean) {
  exp::print_banner(std::cout, title, "fraction of jobs per degradation bucket");
  exp::Table t({"scheme", "<10%", "10-30%", ">30%", "median degr %"});
  for (const base::Scheme s : schemes) {
    const SchemeResult& r = results.at(s);
    int lo = 0;
    int mid = 0;
    int hi = 0;
    std::vector<double> degr;
    for (std::size_t i = 0; i < r.jct.size(); ++i) {
      if (r.jct[i] < 0.0 || clean.jct[i] <= 0.0) continue;
      const double d = r.jct[i] / clean.jct[i] - 1.0;
      degr.push_back(d * 100.0);
      if (d < 0.10) {
        ++lo;
      } else if (d < 0.30) {
        ++mid;
      } else {
        ++hi;
      }
    }
    const double n = std::max<double>(1.0, static_cast<double>(lo + mid + hi));
    t.add_row(base::to_string(s),
              {lo / n, mid / n, hi / n, sim::percentile_of(degr, 0.5)}, 2);
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  const std::vector<base::Scheme> schemes = {base::Scheme::kLate, base::Scheme::kDolly2,
                                             base::Scheme::kDolly4, base::Scheme::kDolly6,
                                             base::Scheme::kPerfCloud};

  const exp::ParallelRunner pool(exp::ParallelRunner::threads_from_env());
  std::cout << "Running the large-scale mixes (150 workers / 15 hosts, 100+100 jobs,\n"
               "5 schemes + 2 clean baselines); this takes a little while...\n";
  // Thread count to stderr so stdout stays byte-identical across
  // PERFCLOUD_THREADS settings.
  std::cerr << "[fig11] running on " << pool.threads() << " thread(s)\n";

  // Every run is a self-contained Cluster, so the 12 scheme x mix
  // combinations execute concurrently; results come back in submission
  // order, making the tables byte-identical across thread counts.
  std::vector<std::function<SchemeResult()>> tasks;
  tasks.emplace_back([] { return run_mix(base::Scheme::kDefault, /*spark=*/false, /*clean=*/true); });
  tasks.emplace_back([] { return run_mix(base::Scheme::kDefault, /*spark=*/true, /*clean=*/true); });
  for (const base::Scheme s : schemes) {
    tasks.emplace_back([s] { return run_mix(s, /*spark=*/false, /*clean=*/false); });
    tasks.emplace_back([s] { return run_mix(s, /*spark=*/true, /*clean=*/false); });
  }
  std::vector<SchemeResult> results = pool.run(tasks);

  const SchemeResult clean_mr = std::move(results[0]);
  const SchemeResult clean_sp = std::move(results[1]);
  std::map<base::Scheme, SchemeResult> mr;
  std::map<base::Scheme, SchemeResult> sp;
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    mr.emplace(schemes[i], std::move(results[2 + 2 * i]));
    sp.emplace(schemes[i], std::move(results[2 + 2 * i + 1]));
  }

  print_breakdown("Fig 11(a) MapReduce mix", schemes, mr, clean_mr);
  print_breakdown("Fig 11(b) Spark mix", schemes, sp, clean_sp);

  exp::print_banner(std::cout, "Fig 11(c)", "resource utilization efficiency per scheme");
  exp::Table t({"scheme", "MapReduce mix", "Spark mix"});
  for (const base::Scheme s : schemes) {
    t.add_row(base::to_string(s), {mr.at(s).efficiency, sp.at(s).efficiency}, 3);
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: Dolly beats LATE, and more clones help the breakdown but\n"
               "drain utilization efficiency; PerfCloud gives the best degradation\n"
               "profile without sacrificing efficiency (it kills nothing).\n";
  return 0;
}
