// Figure 3 — The std-dev of the block-iowait ratio across the Hadoop VMs as
// an early indicator of I/O contention.
//
//  (a) time series for a MapReduce terasort job (10 map + 10 reduce tasks),
//      running alone vs colocated with fio random read;
//  (b) peak deviation for all benchmarks, alone vs with fio — alone it must
//      stay below the paper's threshold of 10; with fio it rises far above
//      (the paper reports a ~8.2x peak increase for terasort).
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

/// Run one job on a monitored motivation cluster; returns the io-deviation
/// signal recorded by a monitoring-only node manager.
sim::TimeSeries signal_for(const wl::JobSpec& job, bool with_fio, std::uint64_t seed) {
  exp::Cluster c = bench::motivation_cluster(seed);
  if (with_fio) exp::add_fio(c, "host-0");  // present for the whole run
  exp::enable_perfcloud(c, core::PerfCloudConfig{}, /*control=*/false);
  exp::run_job(c, job);
  return c.node_manager(0).io_signal("hadoop");
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 5;

  // --- (a) terasort time series ---
  const wl::JobSpec terasort = wl::make_terasort(10, 10);
  const sim::TimeSeries alone = signal_for(terasort, false, kSeed);
  const sim::TimeSeries contended = signal_for(terasort, true, kSeed);

  exp::print_banner(std::cout, "Fig 3(a)",
                    "std-dev of block iowait ratio across Hadoop VMs (terasort 10+10)");
  exp::Table ts({"t (s)", "alone", "with fio"});
  const std::size_t n = std::max(alone.size(), contended.size());
  for (std::size_t i = 0; i < n; ++i) {
    ts.add_row(exp::fmt(5.0 * static_cast<double>(i + 1), 0),
               {i < alone.size() ? alone.value(i) : 0.0,
                i < contended.size() ? contended.value(i) : 0.0},
               2);
  }
  ts.print(std::cout);
  std::cout << "peak alone = " << exp::fmt(alone.peak(), 2)
            << ", peak with fio = " << exp::fmt(contended.peak(), 2) << " (ratio "
            << exp::fmt(contended.peak() / std::max(alone.peak(), 1e-9), 1)
            << "x; paper reports ~8.2x)\n";

  // --- (b) peaks across all benchmarks ---
  exp::print_banner(std::cout, "Fig 3(b)",
                    "peak iowait-ratio deviation per benchmark, alone vs with fio");
  exp::Table t({"benchmark", "peak alone", "peak with fio", "alone < 10?", "fio > 10?"});
  for (const std::string& name : wl::benchmark_names()) {
    const wl::JobSpec job = wl::make_benchmark(name, 20);  // long enough to sample
    const double pa = signal_for(job, false, kSeed).peak();
    const double pf = signal_for(job, true, kSeed).peak();
    t.add_row({name, exp::fmt(pa, 2), exp::fmt(pf, 2), pa < 10.0 ? "yes" : "NO",
               pf > 10.0 ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nPaper shape: the deviation never crosses the threshold H=10 when the\n"
               "application runs alone, and crosses it within seconds of fio arriving.\n";
  return 0;
}
