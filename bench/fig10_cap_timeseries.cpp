// Figure 10 — Resource caps applied by PerfCloud over time.
//
// Same scenario as Fig 9 under PerfCloud; prints the normalized I/O cap on
// the fio VM and the normalized CPU cap on the STREAM VM. Expected shape:
// throttling during the contended window, cubic recovery through the
// plateau, then rapid probing; possible re-throttle events when the
// deviation signal spikes again.
#include <iostream>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

int main() {
  constexpr std::uint64_t kSeed = 19;

  exp::Cluster c = bench::small_scale_cluster(kSeed);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.start_s = 15.0});
  const int stream =
      exp::add_stream(c, "host-0", wl::StreamBenchmark::Params{.threads = 16, .start_s = 15.0});
  exp::add_oltp(c, "host-0");
  exp::add_sysbench_cpu(c, "host-0");
  exp::enable_perfcloud(c, core::PerfCloudConfig{});

  const double jct = exp::run_job(c, wl::make_spark_logreg(40, 8));
  exp::run_for(c, 60.0);  // let the caps recover and lift after the job

  core::NodeManager& nm = c.node_manager(0);
  const sim::TimeSeries& io_caps = nm.io_cap_series(fio);
  const sim::TimeSeries& cpu_caps = nm.cpu_cap_series(stream);

  exp::print_banner(std::cout, "Fig 10(a)", "normalized I/O cap on the fio VM over time");
  exp::Table a({"t (s)", "I/O cap (x baseline)"});
  for (std::size_t i = 0; i < io_caps.size(); ++i) {
    a.add_row(exp::fmt(io_caps.time(i).seconds(), 0), {io_caps.value(i)}, 3);
  }
  a.print(std::cout);

  exp::print_banner(std::cout, "Fig 10(b)", "normalized CPU cap on the STREAM VM over time");
  exp::Table b({"t (s)", "CPU cap (x baseline)"});
  for (std::size_t i = 0; i < cpu_caps.size(); ++i) {
    b.add_row(exp::fmt(cpu_caps.time(i).seconds(), 0), {cpu_caps.value(i)}, 3);
  }
  b.print(std::cout);

  int io_decreases = 0;
  for (std::size_t i = 1; i < io_caps.size(); ++i) {
    if (io_caps.value(i) < io_caps.value(i - 1) - 1e-9) ++io_decreases;
  }
  std::cout << "\nJCT under PerfCloud: " << exp::fmt(jct, 0) << " s; I/O cap decrease events: "
            << io_decreases << "\n";
  std::cout << "Paper shape: throttling shortly after the antagonists arrive, cubic\n"
               "recovery (growth -> plateau -> probing), re-throttles on signal spikes,\n"
               "and full cap removal once contention is gone for good.\n";
  return 0;
}
