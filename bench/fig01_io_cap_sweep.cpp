// Figure 1 — Performance degradation due to a colocated I/O-intensive
// workload, and the effect of statically capping its I/O.
//
//  (a) MapReduce normalized JCT vs the I/O cap applied to the fio VM;
//  (b) Spark normalized JCT vs the same caps (plateau below ~20 %);
//  (c) all six benchmarks against an uncapped fio, plus fio's own
//      normalized IOPS under each cap.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "exp/report.hpp"

using namespace perfcloud;

namespace {

struct CapResult {
  double norm_jct = 0.0;
  double fio_norm_iops = 0.0;
};

/// Run `job` on the motivation cluster with a fio neighbour capped at
/// `cap_fraction` of its standalone throughput (< 0 = uncapped).
CapResult run_with_cap(const wl::JobSpec& job, double cap_fraction, double base_jct,
                       double fio_solo_iops, std::uint64_t seed) {
  exp::Cluster c = bench::motivation_cluster(seed);
  const int fio = exp::add_fio(c, "host-0", wl::FioRandomRead::Params{.duty_period_s = 0.0});
  if (cap_fraction >= 0.0) {
    const double cap_bps = cap_fraction * fio_solo_iops * 4096.0;
    c.cloud->host("host-0").set_blkio_throttle(fio, cap_bps);
  }
  CapResult r;
  r.norm_jct = exp::run_job(c, job) / base_jct;
  const auto* guest = dynamic_cast<const wl::FioRandomRead*>(c.vm(fio).guest());
  r.fio_norm_iops = guest->achieved_iops() / fio_solo_iops;
  return r;
}

}  // namespace

int main() {
  constexpr std::uint64_t kSeed = 42;
  const double fio_solo = bench::fio_standalone_iops(kSeed);
  const std::vector<double> caps = {-1.0, 0.5, 0.4, 0.3, 0.2, 0.1};
  const std::vector<std::string> cap_labels = {"none", "50%", "40%", "30%", "20%", "10%"};

  // --- (a) MapReduce terasort, (b) Spark logistic regression ---
  for (const std::string& name : {std::string("terasort"), std::string("logreg")}) {
    const wl::JobSpec job = bench::motivation_job(name);
    const double base = bench::baseline_jct(job, kSeed);
    exp::print_banner(std::cout,
                      name == "terasort" ? "Fig 1(a)" : "Fig 1(b)",
                      name + " normalized JCT vs I/O cap on the fio VM");
    exp::Table t({"fio I/O cap", "norm JCT", "fio norm IOPS"});
    for (std::size_t i = 0; i < caps.size(); ++i) {
      // Same seed for every cap level: the jitter streams are identical, so
      // differences between rows are the cap's effect alone.
      const CapResult r = run_with_cap(job, caps[i], base, fio_solo, kSeed);
      t.add_row(cap_labels[i], {r.norm_jct, r.fio_norm_iops});
    }
    t.print(std::cout);
  }

  // --- (c) all six benchmarks vs an uncapped fio ---
  exp::print_banner(std::cout, "Fig 1(c)",
                    "degradation of all benchmarks due to uncapped colocated fio");
  exp::Table t({"benchmark", "norm JCT", "degradation %"});
  for (const std::string& name : wl::benchmark_names()) {
    const wl::JobSpec job = bench::motivation_job(name);
    const double base = bench::baseline_jct(job, kSeed);
    const CapResult r = run_with_cap(job, -1.0, base, fio_solo, kSeed);
    t.add_row(name, {r.norm_jct, (r.norm_jct - 1.0) * 100.0}, 2);
  }
  t.print(std::cout);
  std::cout << "\n(fio standalone: " << exp::fmt(fio_solo, 1) << " IOPS)\n";
  std::cout << "Paper shape: terasort degraded ~72%, Spark logreg ~44%; Spark\n"
               "improvement plateaus once the fio cap falls below ~20%.\n";
  return 0;
}
